// Message passing: point-to-point semantics, matching, collectives on
// awkward communicator sizes, split/dup, and transport timing.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "mpi/comm.h"
#include "mpi/machine.h"

namespace mcio::mpi {
namespace {

sim::ClusterConfig small_cluster(int nodes = 3, int ppn = 4) {
  sim::ClusterConfig c;
  c.num_nodes = nodes;
  c.ranks_per_node = ppn;
  return c;
}

TEST(PointToPoint, SendRecvMoveBytes) {
  Machine machine(small_cluster());
  machine.run(2, [](Rank& rank) {
    if (rank.rank() == 0) {
      const std::uint64_t v = 0xdeadbeef;
      rank.world().send(1, 5,
                        util::ConstPayload::real(
                            reinterpret_cast<const std::byte*>(&v),
                            sizeof(v)));
    } else {
      std::uint64_t v = 0;
      Status st;
      rank.world().recv(0, 5,
                        util::Payload::real(
                            reinterpret_cast<std::byte*>(&v), sizeof(v)),
                        &st);
      EXPECT_EQ(v, 0xdeadbeefull);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.bytes, sizeof(v));
      EXPECT_GT(st.arrival, 0.0);
    }
  });
}

TEST(PointToPoint, FifoPerSourceAndTag) {
  Machine machine(small_cluster());
  machine.run(2, [](Rank& rank) {
    constexpr int kN = 16;
    if (rank.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        const std::int32_t v = i;
        rank.world().send(1, 9,
                          util::ConstPayload::real(
                              reinterpret_cast<const std::byte*>(&v),
                              sizeof(v)));
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        std::int32_t v = -1;
        rank.world().recv(0, 9,
                          util::Payload::real(
                              reinterpret_cast<std::byte*>(&v),
                              sizeof(v)));
        EXPECT_EQ(v, i);  // arrival order preserved
      }
    }
  });
}

TEST(PointToPoint, TagSelective) {
  Machine machine(small_cluster());
  machine.run(2, [](Rank& rank) {
    if (rank.rank() == 0) {
      const std::int32_t a = 1, b = 2;
      rank.world().send(1, 100,
                        util::ConstPayload::real(
                            reinterpret_cast<const std::byte*>(&a),
                            sizeof(a)));
      rank.world().send(1, 200,
                        util::ConstPayload::real(
                            reinterpret_cast<const std::byte*>(&b),
                            sizeof(b)));
    } else {
      std::int32_t v = 0;
      // Receive the tag-200 message first, out of arrival order.
      rank.world().recv(0, 200,
                        util::Payload::real(
                            reinterpret_cast<std::byte*>(&v), sizeof(v)));
      EXPECT_EQ(v, 2);
      rank.world().recv(0, 100,
                        util::Payload::real(
                            reinterpret_cast<std::byte*>(&v), sizeof(v)));
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(PointToPoint, AnySource) {
  Machine machine(small_cluster());
  machine.run(4, [](Rank& rank) {
    if (rank.rank() != 0) {
      const std::int32_t v = rank.rank();
      rank.world().send(0, 3,
                        util::ConstPayload::real(
                            reinterpret_cast<const std::byte*>(&v),
                            sizeof(v)));
    } else {
      bool seen[4] = {true, false, false, false};
      for (int i = 0; i < 3; ++i) {
        std::int32_t v = 0;
        Status st;
        rank.world().recv(kAnySource, 3,
                          util::Payload::real(
                              reinterpret_cast<std::byte*>(&v),
                              sizeof(v)),
                          &st);
        EXPECT_EQ(st.source, v);
        seen[v] = true;
      }
      EXPECT_TRUE(seen[1] && seen[2] && seen[3]);
    }
  });
}

TEST(PointToPoint, IrecvBeforeAndAfterSend) {
  Machine machine(small_cluster());
  machine.run(2, [](Rank& rank) {
    if (rank.rank() == 0) {
      std::int32_t early = 0, late = 0;
      Request r_early = rank.world().irecv(
          1, 1,
          util::Payload::real(reinterpret_cast<std::byte*>(&early),
                              sizeof(early)));
      // Wait for both; the second irecv is posted after arrival.
      rank.world().wait(r_early);
      EXPECT_EQ(early, 11);
      Request r_late = rank.world().irecv(
          1, 2,
          util::Payload::real(reinterpret_cast<std::byte*>(&late),
                              sizeof(late)));
      EXPECT_TRUE(rank.world().test(r_late));
      rank.world().wait(r_late);
      EXPECT_EQ(late, 22);
    } else {
      const std::int32_t a = 11, b = 22;
      rank.world().send(0, 1,
                        util::ConstPayload::real(
                            reinterpret_cast<const std::byte*>(&a),
                            sizeof(a)));
      rank.world().send(0, 2,
                        util::ConstPayload::real(
                            reinterpret_cast<const std::byte*>(&b),
                            sizeof(b)));
    }
  });
}

TEST(PointToPoint, BlobRoundTrip) {
  Machine machine(small_cluster());
  machine.run(2, [](Rank& rank) {
    if (rank.rank() == 0) {
      std::vector<std::byte> blob(1000);
      for (std::size_t i = 0; i < blob.size(); ++i) {
        blob[i] = static_cast<std::byte>(i & 0xff);
      }
      rank.world().send_blob(1, 7, blob);
      rank.world().send_blob(1, 7, {});  // empty blob
    } else {
      const auto blob = rank.world().recv_blob(0, 7);
      ASSERT_EQ(blob.size(), 1000u);
      EXPECT_EQ(blob[999], static_cast<std::byte>(999 & 0xff));
      EXPECT_TRUE(rank.world().recv_blob(0, 7).empty());
    }
  });
}

TEST(Transport, InterNodeSlowerThanIntraNode) {
  Machine machine(small_cluster(2, 2));
  sim::SimTime intra = 0.0, inter = 0.0;
  machine.run(4, [&](Rank& rank) {
    std::vector<std::byte> buf(1 << 20);
    if (rank.rank() == 0) {
      rank.world().send(1, 1, util::ConstPayload::of(buf));  // same node
      rank.world().send(2, 2, util::ConstPayload::of(buf));  // other node
    } else if (rank.rank() == 1) {
      Status st;
      rank.world().recv(0, 1, util::Payload::of(buf), &st);
      intra = st.arrival;
    } else if (rank.rank() == 2) {
      Status st;
      rank.world().recv(0, 2, util::Payload::of(buf), &st);
      inter = st.arrival;
    }
  });
  EXPECT_GT(intra, 0.0);
  EXPECT_GT(inter, intra);  // NIC (1.5 GB/s) beats membus (25 GB/s)? No:
  // inter-node crosses two NIC queues at 1.5 GB/s, intra-node one membus
  // pass at 25 GB/s, so inter must be slower.
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BarrierCompletes) {
  const int p = GetParam();
  Machine machine(small_cluster(4, 4));
  machine.run(p, [](Rank& rank) {
    for (int i = 0; i < 3; ++i) rank.world().barrier();
  });
}

TEST_P(CollectiveSizes, BcastFromEveryRoot) {
  const int p = GetParam();
  Machine machine(small_cluster(4, 4));
  machine.run(p, [p](Rank& rank) {
    for (int root = 0; root < p; ++root) {
      std::int64_t v = rank.rank() == root ? 1000 + root : -1;
      rank.world().bcast(v, root);
      EXPECT_EQ(v, 1000 + root);
    }
  });
}

TEST_P(CollectiveSizes, GatherAndAllgather) {
  const int p = GetParam();
  Machine machine(small_cluster(4, 4));
  machine.run(p, [p](Rank& rank) {
    const auto gathered = rank.world().gather(rank.rank() * 3, 0);
    if (rank.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(i)], i * 3);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
    const auto all = rank.world().allgather(rank.rank() + 100);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)], i + 100);
    }
  });
}

TEST_P(CollectiveSizes, AllgatherVariableSizes) {
  const int p = GetParam();
  Machine machine(small_cluster(4, 4));
  machine.run(p, [p](Rank& rank) {
    std::vector<std::int32_t> mine(
        static_cast<std::size_t>(rank.rank() % 3), rank.rank());
    const auto all = rank.world().allgatherv(
        std::span<const std::int32_t>(mine));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const auto& v = all[static_cast<std::size_t>(r)];
      ASSERT_EQ(v.size(), static_cast<std::size_t>(r % 3));
      for (const auto x : v) EXPECT_EQ(x, r);
    }
  });
}

TEST_P(CollectiveSizes, Allreduce) {
  const int p = GetParam();
  Machine machine(small_cluster(4, 4));
  machine.run(p, [p](Rank& rank) {
    EXPECT_EQ(rank.world().allreduce_max(
                  static_cast<std::int64_t>(rank.rank())),
              p - 1);
    EXPECT_EQ(rank.world().allreduce_sum(std::int64_t{1}), p);
    EXPECT_DOUBLE_EQ(rank.world().allreduce_sum(0.5), 0.5 * p);
    EXPECT_DOUBLE_EQ(
        rank.world().allreduce_max(static_cast<double>(rank.rank())),
        static_cast<double>(p - 1));
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 5, 7, 12, 16));

TEST(Comm, SplitByParity) {
  Machine machine(small_cluster());
  machine.run(8, [](Rank& rank) {
    Comm sub = rank.world().split(rank.rank() % 2, rank.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.world_rank(sub.rank()), rank.rank());
    // Sub-communicator collectives work and stay isolated.
    const auto all = sub.allgather(rank.rank());
    for (const int w : all) EXPECT_EQ(w % 2, rank.rank() % 2);
  });
}

TEST(Comm, SplitByKeyReordering) {
  Machine machine(small_cluster());
  machine.run(4, [](Rank& rank) {
    // Reverse order via descending keys.
    Comm sub = rank.world().split(0, -rank.rank());
    EXPECT_EQ(sub.rank(), 3 - rank.rank());
  });
}

TEST(Comm, DupIsolatesTagSpace) {
  Machine machine(small_cluster());
  machine.run(3, [](Rank& rank) {
    Comm dup = rank.world().dup();
    EXPECT_EQ(dup.size(), rank.world().size());
    dup.barrier();
    const auto all = dup.allgather(rank.rank());
    EXPECT_EQ(all.size(), 3u);
  });
}

TEST(Comm, VirtualPayloadMessages) {
  Machine machine(small_cluster());
  machine.run(2, [](Rank& rank) {
    if (rank.rank() == 0) {
      rank.world().send(1, 4, util::ConstPayload::virtual_bytes(1 << 20));
    } else {
      Status st;
      rank.world().recv(0, 4, util::Payload::virtual_bytes(1 << 20), &st);
      EXPECT_EQ(st.bytes, 1u << 20);
      EXPECT_GT(st.arrival, 0.0);
    }
  });
}

TEST(Comm, HierCollectivesMatchFlat) {
  // The node-leader variants must return bit-identical results to the
  // flat collectives on awkward communicator sizes: single rank, one
  // full node, a partially occupied last node, and the full machine.
  for (const int n : {1, 4, 7, 12}) {
    Machine machine(small_cluster());
    machine.run(n, [n](Rank& rank) {
      const int me = rank.rank();
      Comm& c = rank.world();
      EXPECT_EQ(c.allgather_hier(me * 3 + 1), c.allgather(me * 3 + 1));
      EXPECT_EQ(c.allreduce_max_hier(static_cast<double>((me * 7) % 5)),
                c.allreduce_max(static_cast<double>((me * 7) % 5)));
      EXPECT_EQ(c.allreduce_max_hier(static_cast<std::int64_t>(me % 3)),
                c.allreduce_max(static_cast<std::int64_t>(me % 3)));

      // Variable-size blobs, some ranks contributing nothing.
      std::vector<std::byte> mine(static_cast<std::size_t>((me * 5) % 7));
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = static_cast<std::byte>(me + static_cast<int>(i));
      }
      EXPECT_EQ(c.allgather_blobs_hier(mine), c.allgather_blobs(mine));

      // All-to-all with a sparse, asymmetric matrix (empties elided on
      // the hier relay must still deliver as empty).
      std::vector<std::vector<std::byte>> to_each(
          static_cast<std::size_t>(n));
      for (int dst = 0; dst < n; ++dst) {
        if ((me + dst) % 3 == 0) continue;
        to_each[static_cast<std::size_t>(dst)].resize(
            static_cast<std::size_t>((me + 2 * dst) % 5 + 1),
            static_cast<std::byte>(me * 16 + dst));
      }
      EXPECT_EQ(c.alltoallv_blobs_hier(to_each),
                c.alltoallv_blobs(to_each));
    });
  }
}

TEST(Machine, FinishTimesDeterministic) {
  const auto once = [] {
    Machine machine(small_cluster());
    return machine.run(12, [](Rank& rank) {
      rank.world().barrier();
      const auto v = rank.world().allgather(rank.rank());
      (void)v;
      rank.world().barrier();
    });
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace mcio::mpi
