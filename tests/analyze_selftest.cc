// Self-test for mcio-analyze — replays the fixture corpus in
// tests/analyze_fixtures/ through the analyzer library and asserts the
// exact diagnostics each fixture declares, then scans the real tree and
// asserts it is clean. The fixtures are the executable specification of
// the rule catalog (DESIGN.md §13): a rule change that shifts a line or
// drops a diagnostic fails here, not in review.
//
// Fixture header grammar (first comment lines of each file):
//   // mcio-analyze-fixture: path=<virtual path> [group=<name>]
//   // expect: clean | <rule>@<line> [<rule>@<line> ...]
//   // expect-suppressed: <rule>@<line> [...]        (optional)
//
// Files sharing a group= are fed to one Analyzer run so cross-file rules
// (lock-order-cycle) see both sides; ungrouped files each get their own
// run. The virtual path= controls path-scoped rules, so a fixture can
// pretend to live in src/sim without being compiled into the simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "tools/analyze/analyzer.h"

namespace {

namespace fs = std::filesystem;
using mcio::analyze::Analyzer;
using mcio::analyze::Finding;

// (rule, line, suppressed) within one virtual path.
using Expectation = std::tuple<std::string, int, bool>;

struct Fixture {
  std::string file_name;     // on-disk name, for messages
  std::string virtual_path;  // path= from the header
  std::string group;         // group= or "" for a solo run
  std::string content;
  std::vector<Expectation> expected;
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read fixture " << p;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Parses "<rule>@<line>" tokens from the tail of an expect line.
void parse_expect_tokens(const std::string& tail, bool suppressed,
                         const std::string& file_name,
                         std::vector<Expectation>* out) {
  std::istringstream is(tail);
  std::string tok;
  while (is >> tok) {
    const std::size_t at = tok.find('@');
    ASSERT_NE(at, std::string::npos)
        << file_name << ": malformed expect token '" << tok << "'";
    const std::string rule = tok.substr(0, at);
    const int line = std::stoi(tok.substr(at + 1));
    out->emplace_back(rule, line, suppressed);
  }
}

Fixture parse_fixture(const fs::path& p) {
  Fixture fx;
  fx.file_name = p.filename().string();
  fx.content = read_file(p);

  std::istringstream lines(fx.content);
  std::string line;
  bool saw_expect = false;
  while (std::getline(lines, line)) {
    if (line.rfind("// mcio-analyze-fixture:", 0) == 0) {
      std::istringstream is(line.substr(sizeof("// mcio-analyze-fixture:")));
      std::string kv;
      while (is >> kv) {
        if (kv.rfind("path=", 0) == 0) fx.virtual_path = kv.substr(5);
        if (kv.rfind("group=", 0) == 0) fx.group = kv.substr(6);
      }
    } else if (line.rfind("// expect:", 0) == 0) {
      saw_expect = true;
      const std::string tail = line.substr(sizeof("// expect:"));
      if (tail.find("clean") == std::string::npos) {
        parse_expect_tokens(tail, /*suppressed=*/false, fx.file_name,
                            &fx.expected);
      }
    } else if (line.rfind("// expect-suppressed:", 0) == 0) {
      parse_expect_tokens(line.substr(sizeof("// expect-suppressed:")),
                          /*suppressed=*/true, fx.file_name, &fx.expected);
    } else if (line.rfind("//", 0) != 0) {
      break;  // header is the leading comment block only
    }
  }
  EXPECT_FALSE(fx.virtual_path.empty())
      << fx.file_name << ": missing 'path=' in fixture header";
  EXPECT_TRUE(saw_expect) << fx.file_name << ": missing '// expect:' line";
  return fx;
}

std::vector<Fixture> load_corpus() {
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(MCIO_ANALYZE_FIXTURE_DIR)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<Fixture> corpus;
  corpus.reserve(paths.size());
  for (const auto& p : paths) corpus.push_back(parse_fixture(p));
  return corpus;
}

// Runs one group of fixtures through a shared Analyzer and diffs the
// (path, line, rule, suppressed) sets in both directions.
void check_group(const std::vector<const Fixture*>& group) {
  Analyzer analyzer;
  std::set<std::tuple<std::string, int, std::string, bool>> expected;
  for (const Fixture* fx : group) {
    analyzer.add_file(fx->virtual_path, fx->content);
    for (const auto& [rule, line, suppressed] : fx->expected) {
      expected.emplace(fx->virtual_path, line, rule, suppressed);
    }
  }
  std::set<std::tuple<std::string, int, std::string, bool>> actual;
  for (const Finding& f : analyzer.finish()) {
    actual.emplace(f.path, f.line, f.rule, f.suppressed);
  }
  for (const auto& e : expected) {
    EXPECT_TRUE(actual.count(e))
        << "expected finding missing: " << std::get<0>(e) << ":"
        << std::get<1>(e) << " [" << std::get<2>(e) << "]"
        << (std::get<3>(e) ? " (suppressed)" : "");
  }
  for (const auto& a : actual) {
    EXPECT_TRUE(expected.count(a))
        << "unexpected finding: " << std::get<0>(a) << ":" << std::get<1>(a)
        << " [" << std::get<2>(a) << "]"
        << (std::get<3>(a) ? " (suppressed)" : "");
  }
}

TEST(AnalyzeFixtures, CorpusMatchesExpectations) {
  const std::vector<Fixture> corpus = load_corpus();
  ASSERT_GE(corpus.size(), 10u) << "fixture corpus went missing";

  std::map<std::string, std::vector<const Fixture*>> groups;
  for (const Fixture& fx : corpus) {
    // Ungrouped fixtures run solo under a key no group= can collide with.
    const std::string key =
        fx.group.empty() ? "solo/" + fx.file_name : fx.group;
    groups[key].push_back(&fx);
  }
  for (const auto& [key, members] : groups) {
    SCOPED_TRACE("fixture group: " + key);
    check_group(members);
  }
}

// At least six distinct rules must be pinned by the corpus — the
// acceptance bar for the fixture suite.
TEST(AnalyzeFixtures, CorpusCoversSixRules) {
  std::set<std::string> rules;
  for (const Fixture& fx : load_corpus()) {
    for (const auto& [rule, line, suppressed] : fx.expected) {
      rules.insert(rule);
    }
  }
  EXPECT_GE(rules.size(), 6u)
      << "fixture corpus pins too few rules; add known-bad fixtures";
  for (const std::string& r : rules) {
    const auto& known = mcio::analyze::all_rules();
    EXPECT_TRUE(std::find(known.begin(), known.end(), r) != known.end())
        << "fixture expects unknown rule '" << r << "'";
  }
}

// The real tree must be clean: every finding in src/, bench/, tests/ is
// either fixed or carries a justified inline suppression. This is the
// same bar CI enforces with the mcio-analyze binary.
TEST(AnalyzeRepo, TreeIsClean) {
  Analyzer analyzer;
  for (const char* dir : {"/src", "/bench", "/tests"}) {
    ASSERT_TRUE(analyzer.add_path(std::string(MCIO_REPO_ROOT) + dir));
  }
  std::vector<std::string> unsuppressed;
  for (const Finding& f : analyzer.finish()) {
    if (!f.suppressed) unsuppressed.push_back(mcio::analyze::format_finding(f));
  }
  EXPECT_TRUE(unsuppressed.empty()) << [&] {
    std::ostringstream os;
    os << unsuppressed.size() << " unsuppressed finding(s):\n";
    for (const std::string& s : unsuppressed) os << "  " << s << "\n";
    return os.str();
  }();
}

}  // namespace
