// 16k-rank scale smoke (ISSUE 10): one collective write at extreme rank
// count through the sharded lookahead engine, budgeted on host wall
// clock so event-queue or fiber regressions that only show at scale
// fail tier-1 instead of only the nightly perf sweeps.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "common.h"  // the bench harness (tests/CMakeLists adds bench/)
#include "io/mpi_file.h"
#include "io/two_phase_driver.h"
#include "workloads/ior.h"

namespace mcio {
namespace {

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MCIO_TEST_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MCIO_TEST_UNDER_SANITIZER 1
#endif

TEST(ScaleSmoke, SixteenKRanksUnderLookahead) {
  // 2048 nodes x 8 ranks, one interleaved 16 KiB transfer per rank.
  // The interesting scale axis is rank/fiber/event count, not bytes:
  // memory levels are small so aggregators negotiate under pressure,
  // and the plan is one extent per rank so the smoke stays a smoke.
  bench::Testbed tb;
  tb.nodes = 2048;
  tb.ranks_per_node = 8;
  const int nranks = 16384;

  workloads::IorConfig w;
  w.block_size = 16ull << 10;
  w.transfer_size = 16ull << 10;
  w.segments = 1;
  w.interleaved = true;

  mpi::Machine machine(tb.cluster());
  machine.set_sim_shards(8);
  machine.set_sim_lookahead(true);
  pfs::Pfs fs(machine.cluster(), tb.pfs());
  node::MemoryManager memory =
      node::MemoryManager::uniform(tb.cluster(), 1ull << 20);
  io::TwoPhaseDriver driver;
  metrics::CollectiveStats stats;
  io::Hints hints;
  hints.cb_buffer_size = 1ull << 20;

  const auto t0 = std::chrono::steady_clock::now();
  double write_bw = 0.0;
  machine.run(nranks, [&](mpi::Rank& rank) {
    io::AccessPlan plan = workloads::ior_plan(
        rank.rank(), nranks, w,
        util::Payload::virtual_bytes(workloads::ior_bytes_per_rank(w)));
    const double my_bytes = static_cast<double>(plan.total_bytes());
    const double all_bytes = rank.world().allreduce_sum(my_bytes);

    io::MPIFile file(rank, rank.world(),
                     io::MPIFile::Services{&fs, &memory}, "/scale_smoke",
                     /*create=*/true, hints, &driver);
    file.set_stats(&stats);

    rank.world().barrier();
    const double s0 = rank.world().allreduce_max(rank.actor().now());
    file.write_all_plan(plan);
    rank.world().barrier();
    const double s1 = rank.world().allreduce_max(rank.actor().now());
    if (rank.rank() == 0) write_bw = all_bytes / (s1 - s0);
  });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // The run completed at scale and produced sane figures.
  EXPECT_GT(write_bw, 0.0);
  EXPECT_GT(stats.num_aggregators(), 0);
  EXPECT_GT(stats.io_bytes(), 0u);
  EXPECT_EQ(stats.io_bytes(), 16384ull * (16ull << 10));

  // Wall-clock budget: generous enough for slow shared CI hosts, tight
  // enough that an accidental O(ranks^2) scheduler or mailbox path
  // blows through it.
  // ~90 s on a single shared core with all 8 shard workers contending;
  // an O(ranks^2) path regresses that to tens of minutes.
#if defined(MCIO_TEST_UNDER_SANITIZER)
  constexpr double kBudgetSeconds = 900.0;
#else
  constexpr double kBudgetSeconds = 300.0;
#endif
  EXPECT_LT(wall, kBudgetSeconds)
      << "16k-rank smoke regressed past the scale budget";
}

}  // namespace
}  // namespace mcio
