// Partition tree: bisection, the paper's two remerge takeover cases
// (Figs 5a/5b), weighted splits, and randomized invariant checks.
#include <gtest/gtest.h>

#include "core/partition_tree.h"
#include "util/rng.h"

namespace mcio::core {
namespace {

using util::Extent;

TEST(PartitionTree, SingleLeafInitially) {
  PartitionTree tree(Extent{100, 1000});
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.extent_of(tree.root()), (Extent{100, 1000}));
  EXPECT_TRUE(tree.is_leaf(tree.root()));
  tree.check_invariants();
}

TEST(PartitionTree, BisectToCriterion) {
  PartitionTree tree(Extent{0, 1 << 20});
  tree.bisect(100 << 10);  // Msg_ind = 100 KiB
  tree.check_invariants();
  for (const int leaf : tree.leaf_ids()) {
    EXPECT_LE(tree.extent_of(leaf).len, 100u << 10);
  }
  EXPECT_EQ(tree.num_leaves(), 16u);  // 1 MiB / 64 KiB after halving
}

TEST(PartitionTree, BisectAligned) {
  PartitionTree tree(Extent{0, 10 * 1000});
  tree.bisect(3000, 1024);
  tree.check_invariants();
  const auto leaves = tree.leaf_ids();
  for (std::size_t i = 0; i + 1 < leaves.size(); ++i) {
    EXPECT_EQ(tree.extent_of(leaves[i]).end() % 1024, 0u)
        << "interior boundary must be aligned";
  }
}

TEST(PartitionTree, RemergeCase1SiblingLeaf) {
  // Fig 5a: A leaves; its sibling B is a leaf; the parent becomes a leaf
  // that owns both regions.
  PartitionTree tree(Extent{0, 100});
  tree.split_leaf(tree.root());
  const auto leaves = tree.leaf_ids();
  ASSERT_EQ(leaves.size(), 2u);
  const int absorber = tree.remerge_into_neighbor(leaves[0]);
  EXPECT_EQ(absorber, tree.root());
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.extent_of(absorber), (Extent{0, 100}));
  tree.check_invariants();
}

TEST(PartitionTree, RemergeCase2LeftSiblingDfs) {
  // Fig 5b: A is the LEFT child; sibling B is a subtree. The DFS must
  // visit left children first, so B's leftmost leaf (adjacent to A)
  // absorbs A's region.
  PartitionTree tree(Extent{0, 400});
  tree.split_leaf(tree.root());  // [0,200) [200,400)
  auto leaves = tree.leaf_ids();
  tree.split_leaf(leaves[1]);  // right: [200,300) [300,400)
  leaves = tree.leaf_ids();
  ASSERT_EQ(leaves.size(), 3u);
  const Extent left_mid = tree.extent_of(leaves[1]);
  ASSERT_EQ(left_mid, (Extent{200, 100}));
  const int absorber = tree.remerge_into_neighbor(leaves[0]);
  // The absorber is the old [200,300) leaf, now [0,300).
  EXPECT_EQ(tree.extent_of(absorber), (Extent{0, 300}));
  EXPECT_EQ(tree.num_leaves(), 2u);
  tree.check_invariants();
  const auto after = tree.leaf_ids();
  EXPECT_EQ(tree.extent_of(after[0]), (Extent{0, 300}));
  EXPECT_EQ(tree.extent_of(after[1]), (Extent{300, 100}));
}

TEST(PartitionTree, RemergeCase2RightSiblingDfs) {
  // Mirror case: A is the RIGHT child; the DFS visits right children
  // first, so the sibling subtree's rightmost leaf absorbs A.
  PartitionTree tree(Extent{0, 400});
  tree.split_leaf(tree.root());  // [0,200) [200,400)
  auto leaves = tree.leaf_ids();
  tree.split_leaf(leaves[0]);  // left: [0,100) [100,200)
  leaves = tree.leaf_ids();
  ASSERT_EQ(leaves.size(), 3u);
  const int absorber = tree.remerge_into_neighbor(leaves[2]);
  EXPECT_EQ(tree.extent_of(absorber), (Extent{100, 300}));
  tree.check_invariants();
}

TEST(PartitionTree, RemergeOnlyLeafReturnsMinusOne) {
  PartitionTree tree(Extent{0, 10});
  EXPECT_EQ(tree.remerge_into_neighbor(tree.root()), -1);
}

TEST(PartitionTree, BisectIntoExactParts) {
  PartitionTree tree(Extent{0, 700});
  tree.bisect_into(7);
  tree.check_invariants();
  EXPECT_EQ(tree.num_leaves(), 7u);
  for (const int leaf : tree.leaf_ids()) {
    EXPECT_EQ(tree.extent_of(leaf).len, 100u);
  }
}

TEST(PartitionTree, BisectWeightedProportions) {
  PartitionTree tree(Extent{0, 1000});
  tree.bisect_weighted({1.0, 3.0, 1.0});
  tree.check_invariants();
  const auto leaves = tree.leaf_ids();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_NEAR(static_cast<double>(tree.extent_of(leaves[0]).len), 200, 2);
  EXPECT_NEAR(static_cast<double>(tree.extent_of(leaves[1]).len), 600, 4);
  EXPECT_NEAR(static_cast<double>(tree.extent_of(leaves[2]).len), 200, 2);
}

TEST(PartitionTree, BisectWeightedAligned) {
  PartitionTree tree(Extent{0, 10 << 20});
  tree.bisect_weighted({1.0, 2.0, 1.5, 0.5}, 1 << 20);
  tree.check_invariants();
  const auto leaves = tree.leaf_ids();
  for (std::size_t i = 0; i + 1 < leaves.size(); ++i) {
    EXPECT_EQ(tree.extent_of(leaves[i]).end() % (1 << 20), 0u);
  }
}

TEST(PartitionTree, SplitSingleByteFails) {
  PartitionTree tree(Extent{5, 1});
  EXPECT_FALSE(tree.split_leaf(tree.root()));
  EXPECT_EQ(tree.num_leaves(), 1u);
}

class PartitionTreeProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionTreeProperty, RandomSplitMergeKeepsInvariants) {
  util::Rng rng(GetParam());
  PartitionTree tree(Extent{1000, 64 * 1024});
  for (int step = 0; step < 200; ++step) {
    const auto leaves = tree.leaf_ids();
    const int pick =  // lint:allow untagged-narrowing (element is int)
        leaves[rng.uniform_u64(leaves.size())];
    if (rng.uniform_double() < 0.6) {
      tree.split_leaf(pick, rng.uniform_double() < 0.5 ? 512 : 0);
    } else if (leaves.size() > 1) {
      const int absorber = tree.remerge_into_neighbor(pick);
      ASSERT_GE(absorber, 0);
      ASSERT_TRUE(tree.is_leaf(absorber));
    }
    tree.check_invariants();
  }
}

TEST_P(PartitionTreeProperty, MergeToSingleLeafRestoresRegion) {
  util::Rng rng(GetParam() ^ 0x55);
  PartitionTree tree(Extent{0, 4096});
  tree.bisect(rng.uniform_u64(500) + 64);
  while (tree.num_leaves() > 1) {
    const auto leaves = tree.leaf_ids();
    tree.remerge_into_neighbor(
        leaves[rng.uniform_u64(leaves.size())]);
    tree.check_invariants();
  }
  EXPECT_EQ(tree.extent_of(tree.leaf_ids()[0]), (Extent{0, 4096}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionTreeProperty,
                         ::testing::Values(1, 7, 42, 1001, 31337));

}  // namespace
}  // namespace mcio::core
