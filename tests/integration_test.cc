// End-to-end integration: both collective drivers move real bytes through
// the full stack (datatypes → plans → exchange → simulated Lustre) and the
// results are verified against the deterministic pattern.
#include <gtest/gtest.h>

#include "testing.h"
#include "workloads/collperf.h"
#include "workloads/ior.h"
#include "workloads/strided.h"

namespace mcio {
namespace {

using testing::MiniCluster;
using testing::MiniClusterOptions;

io::AccessPlan strided_factory(int rank, int nprocs,
                               std::vector<std::byte>& storage) {
  workloads::StridedConfig cfg;
  cfg.block = 3000;  // deliberately unaligned with pages and stripes
  cfg.stride = 7168;
  cfg.count = 9;
  storage.resize(workloads::strided_bytes_per_rank(cfg));
  return workloads::strided_plan(rank, nprocs, cfg,
                                 util::Payload::of(storage));
}

io::AccessPlan ior_interleaved_factory(int rank, int nprocs,
                                       std::vector<std::byte>& storage) {
  workloads::IorConfig cfg;
  cfg.block_size = 64 << 10;
  cfg.transfer_size = 8 << 10;
  cfg.segments = 3;
  cfg.interleaved = true;
  storage.resize(workloads::ior_bytes_per_rank(cfg));
  return workloads::ior_plan(rank, nprocs, cfg,
                             util::Payload::of(storage));
}

io::AccessPlan ior_segmented_factory(int rank, int nprocs,
                                     std::vector<std::byte>& storage) {
  workloads::IorConfig cfg;
  cfg.block_size = 96 << 10;
  cfg.transfer_size = 16 << 10;
  cfg.segments = 2;
  cfg.interleaved = false;
  storage.resize(workloads::ior_bytes_per_rank(cfg));
  return workloads::ior_plan(rank, nprocs, cfg,
                             util::Payload::of(storage));
}

io::AccessPlan collperf_factory(int rank, int nprocs,
                                std::vector<std::byte>& storage) {
  workloads::CollPerfConfig cfg;
  cfg.dims = {32, 24, 20};
  cfg.elem_size = 8;
  storage.resize(workloads::collperf_bytes_per_rank(rank, nprocs, cfg));
  return workloads::collperf_plan(rank, nprocs, cfg,
                                  util::Payload::of(storage));
}

TEST(TwoPhaseIntegration, StridedRoundTrip) {
  MiniCluster cluster;
  io::TwoPhaseDriver driver;
  ASSERT_NO_THROW(
      round_trip(cluster, driver, cluster.total_ranks(), strided_factory));
}

TEST(TwoPhaseIntegration, IorInterleavedRoundTrip) {
  MiniCluster cluster;
  io::TwoPhaseDriver driver;
  ASSERT_NO_THROW(round_trip(cluster, driver, cluster.total_ranks(),
                             ior_interleaved_factory));
}

TEST(TwoPhaseIntegration, IorSegmentedRoundTrip) {
  MiniCluster cluster;
  io::TwoPhaseDriver driver;
  ASSERT_NO_THROW(round_trip(cluster, driver, cluster.total_ranks(),
                             ior_segmented_factory));
}

TEST(TwoPhaseIntegration, CollPerfRoundTrip) {
  MiniCluster cluster;
  io::TwoPhaseDriver driver;
  ASSERT_NO_THROW(round_trip(cluster, driver, cluster.total_ranks(),
                             collperf_factory));
}

TEST(MccioIntegration, StridedRoundTrip) {
  MiniCluster cluster;
  core::MccioDriver driver;
  driver.config().msg_ind = 128 << 10;
  ASSERT_NO_THROW(
      round_trip(cluster, driver, cluster.total_ranks(), strided_factory));
}

TEST(MccioIntegration, IorInterleavedRoundTrip) {
  MiniCluster cluster;
  core::MccioDriver driver;
  driver.config().msg_ind = 128 << 10;
  ASSERT_NO_THROW(round_trip(cluster, driver, cluster.total_ranks(),
                             ior_interleaved_factory));
}

TEST(MccioIntegration, IorSegmentedRoundTrip) {
  MiniCluster cluster;
  core::MccioDriver driver;
  driver.config().msg_ind = 128 << 10;
  ASSERT_NO_THROW(round_trip(cluster, driver, cluster.total_ranks(),
                             ior_segmented_factory));
}

TEST(MccioIntegration, CollPerfRoundTrip) {
  MiniCluster cluster;
  core::MccioDriver driver;
  driver.config().msg_ind = 128 << 10;
  ASSERT_NO_THROW(round_trip(cluster, driver, cluster.total_ranks(),
                             collperf_factory));
}

TEST(MccioIntegration, RoundTripWithMemoryVariance) {
  MiniClusterOptions opt;
  opt.memory_stdev = 0.5;
  opt.node_memory_mean = 512 << 10;
  MiniCluster cluster(opt);
  core::MccioDriver driver;
  driver.config().msg_ind = 64 << 10;
  ASSERT_NO_THROW(round_trip(cluster, driver, cluster.total_ranks(),
                             ior_interleaved_factory));
}

TEST(MccioIntegration, RoundTripAllComponentsDisabled) {
  MiniCluster cluster;
  core::MccioDriver driver;
  driver.config().msg_ind = 128 << 10;
  driver.config().group_division = false;
  driver.config().remerging = false;
  driver.config().memory_aware = false;
  ASSERT_NO_THROW(round_trip(cluster, driver, cluster.total_ranks(),
                             collperf_factory));
}

}  // namespace
}  // namespace mcio
