// Sharded engine (DESIGN.md §12): identical results for every thread
// count, deterministic cross-shard mailbox merging under flood, the
// unpark-before-park wakeup token, and the fiber guard page.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "io/two_phase_driver.h"
#include "sim/engine.h"
#include "sim/fiber.h"
#include "testing.h"
#include "util/check.h"

namespace mcio::sim {
namespace {

/// A sync-heavy mixed workload: staggered advances, syncs and a
/// park/unpark pair, exercising every scheduler transition.
std::vector<SimTime> run_workload(int threads,
                                  const std::vector<int>& hints) {
  Engine::Options opt;
  opt.threads = threads;
  Engine engine(opt);
  constexpr int kActors = 12;
  int parker = -1;
  for (int i = 0; i < kActors; ++i) {
    const int hint = hints.empty() ? -1 : hints[static_cast<size_t>(i)];
    const int id = engine.spawn(
        [i, &parker](Actor& a) {
          for (int k = 0; k < 20; ++k) {
            a.advance(0.001 * ((i * 7 + k) % 5 + 1));
            a.sync();
          }
          if (i == 0) {
            a.park();  // mcio-analyze: allow(unobserved-park) -- scheduler's own test
          } else if (i == 1) {
            a.advance(1.0);
            a.sync();
            if (a.engine().is_parked(parker)) {
              a.engine().unpark(parker, a.now());
            }
          }
        },
        hint);
    if (i == 0) parker = id;
  }
  engine.run();
  return engine.finish_times();
}

TEST(ShardedEngine, FinishTimesIdenticalForEveryThreadCount) {
  const std::vector<SimTime> single = run_workload(1, {});
  for (const int threads : {2, 3, 8}) {
    EXPECT_EQ(run_workload(threads, {}), single)
        << "threads=" << threads << " diverged from the classic loop";
  }
}

TEST(ShardedEngine, ShardHintsCannotChangeResults) {
  const std::vector<SimTime> base = run_workload(4, {});
  // All actors on one shard, reversed placement, scattered placement:
  // pure thread-placement choices, so results must not move.
  EXPECT_EQ(run_workload(4, std::vector<int>(12, 0)), base);
  std::vector<int> reversed;
  for (int i = 0; i < 12; ++i) reversed.push_back(11 - i);
  EXPECT_EQ(run_workload(4, reversed), base);
  std::vector<int> scattered;
  for (int i = 0; i < 12; ++i) scattered.push_back((i * 5) % 3);
  EXPECT_EQ(run_workload(4, scattered), base);
}

/// Floods the cross-shard mailboxes: every actor posts a remote event to
/// every other-shard actor on every slice. The applied log must be
/// complete (nothing dropped under load) and identical across runs (the
/// (time, source, seq) merge is a total order, not a race).
struct FloodResult {
  std::vector<std::tuple<int, int, int>> log;  ///< (target, src, k)
  std::uint64_t posted = 0;
};

FloodResult run_flood(int threads) {
  Engine::Options opt;
  opt.threads = threads;
  Engine engine(opt);
  FloodResult out;
  constexpr int kActors = 12;
  for (int i = 0; i < kActors; ++i) {
    engine.spawn([i, &engine, &out](Actor& a) {
      for (int k = 0; k < 10; ++k) {
        a.advance(0.001 * ((i + k) % 4 + 1));
        a.sync();
        for (int target = 0; target < kActors; ++target) {
          if (!engine.cross_shard(target)) continue;
          ++out.posted;
          engine.post_remote(target, [target, i, k, &out] {
            out.log.emplace_back(target, i, k);
          });
        }
      }
    });
  }
  engine.run();
  return out;
}

TEST(ShardedEngine, MailboxFloodCompleteAndDeterministic) {
  for (const int threads : {2, 4, 8}) {
    const FloodResult first = run_flood(threads);
    // Every slice sees 9 of the 12 actors on other shards (12 actors
    // round-robin over >= 2 shards), and every posted event applies.
    EXPECT_GT(first.posted, 0u) << "threads=" << threads;
    EXPECT_EQ(first.log.size(), first.posted) << "threads=" << threads;
    const FloodResult second = run_flood(threads);
    EXPECT_EQ(second.posted, first.posted);
    EXPECT_EQ(second.log, first.log)
        << "threads=" << threads << ": mailbox merge order is racy";
  }
}

void run_token_workload(int threads) {
  Engine::Options opt;
  opt.threads = threads;
  Engine engine(opt);
  bool woke = false;
  int sleeper = -1;
  sleeper = engine.spawn([&](Actor& a) {
    a.advance(1.0);
    a.sync();
    // The unpark below already happened (at virtual time 0): park must
    // consume its token and return without blocking.
    a.park();  // mcio-analyze: allow(unobserved-park) -- scheduler's own test
    woke = true;
    EXPECT_DOUBLE_EQ(a.now(), 1.0);  // token time 0.5 never rewinds
    // A second park has no token: it must genuinely block for the
    // late unparker.
    a.park();  // mcio-analyze: allow(unobserved-park) -- scheduler's own test
    EXPECT_DOUBLE_EQ(a.now(), 2.0);
  });
  engine.spawn([&, sleeper](Actor& a) {
    EXPECT_FALSE(a.engine().is_parked(sleeper));
    a.engine().unpark(sleeper, 0.5);  // unpark-before-park
  });
  engine.spawn([&, sleeper](Actor& a) {
    a.advance(2.0);
    a.sync();
    EXPECT_TRUE(a.engine().is_parked(sleeper));
    a.engine().unpark(sleeper, a.now());
  });
  engine.run();
  EXPECT_TRUE(woke);
}

TEST(ShardedEngine, UnparkBeforeParkConsumesToken) {
  run_token_workload(1);
  run_token_workload(3);
}

TEST(ShardedEngine, TokenDoesNotLeakAcrossParks) {
  // A token is one wakeup: an actor that parks twice after a single
  // early unpark must deadlock on the second park.
  Engine engine;
  const int sleeper = engine.spawn([](Actor& a) {
    a.sync();
    a.park();  // mcio-analyze: allow(unobserved-park) -- consumes the token
    a.park();  // mcio-analyze: allow(unobserved-park) -- deliberate deadlock
  });
  engine.spawn([sleeper](Actor& a) {
    a.engine().unpark(sleeper, 0.0);
  });
  EXPECT_THROW(engine.run(), util::Error);
}

TEST(ShardedEngine, MachineRunIdenticalAcrossSimShards) {
  // A fig-shaped mini collective on 1, 2 and 8 engine shards: the
  // round-trip itself byte-verifies the file and read-back, and the
  // exchange counters pin the message schedule.
  auto run_once = [](int shards) {
    mcio::testing::MiniCluster cluster;
    cluster.machine().set_sim_shards(shards);
    io::TwoPhaseDriver driver;
    metrics::CollectiveStats stats;
    const int nranks = cluster.total_ranks();
    mcio::testing::round_trip(
        cluster, driver, nranks,
        [](int rank, int nprocs, std::vector<std::byte>& storage) {
          storage.resize(96 << 10);
          std::vector<util::Extent> extents;
          // Interleaved 8 KiB chunks: heavy cross-node exchange.
          for (int c = 0; c < 12; ++c) {
            extents.push_back(
                {static_cast<std::uint64_t>((c * nprocs + rank)) * (8 << 10),
                 8 << 10});
          }
          return io::make_plan(extents, util::Payload::of(storage));
        },
        /*seed=*/1234, io::Hints{}, &stats);
    return std::make_tuple(stats.msgs_intra_node(), stats.msgs_inter_node(),
                           stats.bytes_inter_node());
  };
  const auto base = run_once(1);
  EXPECT_EQ(run_once(2), base);
  EXPECT_EQ(run_once(8), base);
}

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MCIO_TEST_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MCIO_TEST_UNDER_SANITIZER 1
#endif

#if !defined(MCIO_TEST_UNDER_SANITIZER)

/// Touches stack pages downward past the fiber's usable bytes.
void overflow_stack(volatile char* p, int depth) {
  volatile char frame[4096];
  frame[0] = static_cast<char>(depth);
  if (depth > 0) overflow_stack(frame, depth - 1);
  *p = frame[0];
}

TEST(FiberGuardPageDeathTest, OverflowHitsGuardNotHeap) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine::Options opt;
        opt.stack_bytes = 16 * 1024;  // the minimum FiberStack allows
        Engine engine(opt);
        engine.spawn([](Actor&) {
          volatile char c = 0;
          overflow_stack(&c, 64);  // 64 * 4 KiB frames >> 16 KiB stack
        });
        engine.run();
      },
      "");
}

#endif  // sanitizers

}  // namespace
}  // namespace mcio::sim
