// Checkpoint/restart of a 3-D block-distributed simulation field — the
// coll_perf-style workload that motivates collective I/O in climate and
// astrophysics codes. Each rank owns a subarray of a global row-major
// array, built as a derived-datatype file view, and the whole field is
// checkpointed and restored through MCCIO.
//
//   ./checkpoint_3d [--dim=192] [--ranks=24] [--steps=3]
#include <iostream>
#include <vector>

#include "core/mccio_driver.h"
#include "io/mpi_file.h"
#include "mpi/machine.h"
#include "node/memory.h"
#include "pfs/pfs.h"
#include "util/bytes.h"
#include "util/cli.h"
#include "workloads/collperf.h"
#include "workloads/pattern.h"

using namespace mcio;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto dim = static_cast<std::uint64_t>(cli.get_int("dim", 192));
  const int nranks = static_cast<int>(cli.get_int("ranks", 24));
  const int steps = static_cast<int>(cli.get_int("steps", 3));
  cli.check_unused();

  sim::ClusterConfig cluster;
  cluster.num_nodes = (nranks + 11) / 12;
  cluster.ranks_per_node = 12;
  mpi::Machine machine(cluster);
  pfs::Pfs fs(machine.cluster(), pfs::PfsConfig{});
  node::MemoryVariance variance;
  variance.relative_stdev = 0.5;
  node::MemoryManager memory(cluster, 16 << 20, variance, 1234);

  workloads::CollPerfConfig field;
  field.dims = {dim, dim, dim};
  field.elem_size = sizeof(double);

  const auto grid = workloads::dims_create3(nranks);
  std::cout << "global field: " << dim << "^3 doubles ("
            << util::format_bytes(workloads::collperf_total_bytes(field))
            << ") on a " << grid[0] << "x" << grid[1] << "x" << grid[2]
            << " process grid\n";

  core::MccioDriver driver;
  for (int step = 0; step < steps; ++step) {
    const std::string path = "/ckpt/step" + std::to_string(step);
    machine.run(nranks, [&](mpi::Rank& rank) {
      const std::uint64_t bytes =
          workloads::collperf_bytes_per_rank(rank.rank(), nranks, field);
      std::vector<std::byte> local(bytes);
      io::AccessPlan plan = workloads::collperf_plan(
          rank.rank(), nranks, field, util::Payload::of(local));
      // "Simulation state" for this step: a step-seeded pattern.
      workloads::fill_pattern(plan, 100 + static_cast<std::uint64_t>(
                                              step));

      io::MPIFile file(rank, rank.world(), {&fs, &memory}, path,
                       /*create=*/true, io::Hints{}, &driver);
      file.write_all_plan(plan);  // checkpoint
      rank.world().barrier();

      // Restart: read the field back and verify every element.
      std::vector<std::byte> restored(bytes);
      io::AccessPlan restart = workloads::collperf_plan(
          rank.rank(), nranks, field, util::Payload::of(restored));
      file.read_all_plan(restart);
      std::string err;
      if (!workloads::verify_pattern(
              restart, 100 + static_cast<std::uint64_t>(step), &err)) {
        std::cerr << "step " << step << " rank " << rank.rank()
                  << ": restart mismatch: " << err << "\n";
      }
      if (rank.rank() == 0) {
        std::cout << "step " << step << ": checkpoint+restart verified, "
                  << "virtual time " << rank.actor().now() << " s\n";
      }
    });
  }
  std::cout << "wrote " << steps << " checkpoints ("
            << util::format_bytes(
                   static_cast<std::uint64_t>(fs.total_bytes_written()))
            << " total) via " << driver.name() << "\n";
  return 0;
}
