// Tuning explorer: measures the MCCIO runtime parameters (§3 ¶2) on a
// user-described cluster and shows how the probe curves saturate —
// useful for understanding what Msg_ind / N_ah / Msg_group mean.
//
//   ./tuning_explorer [--nodes=10] [--osts=32] [--ost-bw-mb=1000]
#include <iostream>

#include "core/tuner.h"
#include "util/bytes.h"
#include "util/cli.h"
#include "util/table.h"

using namespace mcio;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  sim::ClusterConfig cluster;
  cluster.num_nodes = static_cast<int>(cli.get_int("nodes", 10));
  cluster.ranks_per_node = 12;
  pfs::PfsConfig pfs;
  pfs.num_osts = static_cast<int>(cli.get_int("osts", 32));
  pfs.ost_write_bandwidth = cli.get_double("ost-bw-mb", 1000.0) * 1e6;
  pfs.seek_latency = cli.get_double("seek-ms", 79.0) * 1e-3;
  pfs.store_data = false;
  cli.check_unused();

  core::Tuner tuner(cluster, pfs);

  std::cout << "# single-aggregator message-size probe (Msg_ind)\n";
  util::Table probe({"message size", "one-node write bandwidth"});
  for (std::uint64_t s = 1 << 20; s <= 128ull << 20; s <<= 1) {
    const double bw = tuner.probe_write_bandwidth(
        1, 1, s, std::max<std::uint64_t>(8 * s, 64ull << 20));
    probe.add(util::format_bytes(s), util::format_mbps(bw));
  }
  probe.print(std::cout);

  std::cout << "\n# aggregators-per-node probe (N_ah)\n";
  util::Table nah({"aggregators on one node", "write bandwidth"});
  for (int a = 1; a <= 4; ++a) {
    const double bw =
        tuner.probe_write_bandwidth(1, a, 32ull << 20, 256ull << 20);
    nah.add(a, util::format_mbps(bw));
  }
  nah.print(std::cout);

  std::cout << "\n# node-count probe (Msg_group saturation)\n";
  util::Table width({"nodes writing", "system write bandwidth"});
  for (int n = 1; n <= cluster.num_nodes; n *= 2) {
    const double bw =
        tuner.probe_write_bandwidth(n, 1, 32ull << 20, 128ull << 20);
    width.add(n, util::format_mbps(bw));
  }
  width.print(std::cout);

  std::cout << "\n# measured parameters\n";
  const auto r = tuner.tune();
  util::Table result({"parameter", "value"});
  result.add("Msg_ind", util::format_bytes(r.msg_ind));
  result.add("N_ah", r.n_ah);
  result.add("Mem_min", util::format_bytes(r.mem_min));
  result.add("Msg_group", util::format_bytes(r.msg_group));
  result.print(std::cout);
  return 0;
}
