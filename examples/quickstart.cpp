// Quickstart: write and read a shared file collectively with both the
// two-phase baseline and memory-conscious collective I/O, on a small
// simulated cluster, with real data verified end to end.
//
//   ./quickstart [--ranks=24] [--driver=mccio|two-phase]
#include <iostream>
#include <vector>

#include "core/mccio_driver.h"
#include "io/mpi_file.h"
#include "io/two_phase_driver.h"
#include "mpi/machine.h"
#include "node/memory.h"
#include "pfs/pfs.h"
#include "util/bytes.h"
#include "util/cli.h"
#include "workloads/ior.h"
#include "workloads/pattern.h"

using namespace mcio;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.get_int("ranks", 24));
  const std::string driver_name = cli.get_string("driver", "mccio");
  cli.check_unused();

  // 1. A simulated cluster: 12 ranks per node, plus a striped file
  //    system and a per-node memory manager.
  sim::ClusterConfig cluster;
  cluster.num_nodes = (nranks + 11) / 12;
  cluster.ranks_per_node = 12;
  mpi::Machine machine(cluster);

  pfs::PfsConfig pfs_config;
  pfs_config.num_osts = 8;
  pfs_config.stripe_unit = 1 << 20;
  pfs::Pfs fs(machine.cluster(), pfs_config);

  node::MemoryVariance variance;
  variance.relative_stdev = 0.5;  // memory differs across nodes
  node::MemoryManager memory(cluster, /*mean_available=*/8 << 20,
                             variance, /*seed=*/42);

  // 2. Pick a collective driver.
  io::TwoPhaseDriver two_phase;
  core::MccioDriver mccio;
  io::CollectiveDriver* driver =
      driver_name == "two-phase"
          ? static_cast<io::CollectiveDriver*>(&two_phase)
          : &mccio;

  // 3. Every rank runs this body, exactly like an MPI program.
  metrics::CollectiveStats stats;
  machine.run(nranks, [&](mpi::Rank& rank) {
    // Each rank owns an interleaved slice of a shared file (IOR-style).
    workloads::IorConfig w;
    w.block_size = 1 << 20;
    w.transfer_size = 64 << 10;
    w.segments = 2;
    std::vector<std::byte> data(workloads::ior_bytes_per_rank(w));
    io::AccessPlan plan = workloads::ior_plan(rank.rank(), nranks, w,
                                              util::Payload::of(data));
    workloads::fill_pattern(plan, /*seed=*/7);

    io::MPIFile file(rank, rank.world(), {&fs, &memory},
                     "/example/quickstart.dat", /*create=*/true,
                     io::Hints{}, driver);
    file.set_stats(&stats);

    file.write_all_plan(plan);   // collective write
    rank.world().barrier();

    std::vector<std::byte> back(data.size());
    io::AccessPlan read_plan = workloads::ior_plan(
        rank.rank(), nranks, w, util::Payload::of(back));
    file.read_all_plan(read_plan);  // collective read

    std::string err;
    if (!workloads::verify_pattern(read_plan, 7, &err)) {
      std::cerr << "rank " << rank.rank() << ": data mismatch: " << err
                << "\n";
    }
    if (rank.rank() == 0) {
      std::cout << "rank 0 virtual completion time: "
                << rank.actor().now() << " s\n";
    }
  });

  // 4. What the collective operation actually did.
  std::cout << "driver: " << driver->name() << "\n";
  std::cout << "aggregators used: " << stats.num_aggregators() << " in "
            << stats.num_groups() << " group(s)\n";
  const auto buffers = stats.buffer_stats();
  std::cout << "aggregation buffers: mean "
            << util::format_bytes(
                   static_cast<std::uint64_t>(buffers.mean()))
            << ", stdev "
            << util::format_bytes(
                   static_cast<std::uint64_t>(buffers.stdev()))
            << "\n";
  std::cout << "shuffle traffic: "
            << util::format_bytes(stats.shuffle_intra_node())
            << " intra-node, "
            << util::format_bytes(stats.shuffle_inter_node())
            << " inter-node\n";
  std::cout << "file system I/O: " << util::format_bytes(stats.io_bytes())
            << "\n";
  std::cout << "round trip verified OK\n";
  return 0;
}
