// Particle snapshot dumps under memory pressure — the extreme-scale
// scenario of the paper's introduction. Ranks dump interleaved particle
// records into one shared file while the nodes have wildly different
// amounts of free memory; the example contrasts the baseline two-phase
// strategy with MCCIO on the *same* cluster state and shows the
// aggregator placement each one chose.
//
//   ./particle_dump [--ranks=48] [--particles-per-rank=8192]
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/mccio_driver.h"
#include "io/mpi_file.h"
#include "io/two_phase_driver.h"
#include "mpi/machine.h"
#include "node/memory.h"
#include "pfs/pfs.h"
#include "util/bytes.h"
#include "util/cli.h"
#include "util/table.h"
#include "workloads/ior.h"
#include "workloads/pattern.h"

using namespace mcio;

namespace {

struct Particle {  // a plausible 48-byte particle record
  double position[3];
  double velocity[3];
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int nranks = static_cast<int>(cli.get_int("ranks", 48));
  const auto per_rank = static_cast<std::uint64_t>(
      cli.get_int("particles-per-rank", 8192));
  cli.check_unused();

  sim::ClusterConfig cluster;
  cluster.num_nodes = (nranks + 11) / 12;
  cluster.ranks_per_node = 12;

  const std::uint64_t bytes_per_rank = per_rank * sizeof(Particle);
  // Interleaved dump: each rank's records land strided across the file,
  // one transfer per 1024 particles.
  workloads::IorConfig layout;
  layout.block_size = bytes_per_rank;
  layout.transfer_size = 1024 * sizeof(Particle);
  layout.segments = 1;
  layout.interleaved = true;

  for (const bool use_mccio : {false, true}) {
    mpi::Machine machine(cluster);
    pfs::Pfs fs(machine.cluster(), pfs::PfsConfig{});
    // Severe, uneven memory pressure: mean 4 MiB, stdev 50 %.
    node::MemoryVariance variance;
    variance.relative_stdev = 0.5;
    node::MemoryManager memory(cluster, 4 << 20, variance, 99);

    io::TwoPhaseDriver two_phase;
    core::MccioDriver mccio;
    io::CollectiveDriver* driver =
        use_mccio ? static_cast<io::CollectiveDriver*>(&mccio)
                  : &two_phase;
    metrics::CollectiveStats stats;
    double elapsed = 0.0;

    machine.run(nranks, [&](mpi::Rank& rank) {
      std::vector<std::byte> buf(bytes_per_rank);
      io::AccessPlan plan = workloads::ior_plan(rank.rank(), nranks,
                                                layout,
                                                util::Payload::of(buf));
      workloads::fill_pattern(plan, 2026);
      io::MPIFile file(rank, rank.world(), {&fs, &memory},
                       "/snapshots/dump.p", /*create=*/true, io::Hints{},
                       driver);
      file.set_stats(&stats);
      rank.world().barrier();
      const double t0 = rank.world().allreduce_max(rank.actor().now());
      file.write_all_plan(plan);
      rank.world().barrier();
      const double t1 = rank.world().allreduce_max(rank.actor().now());
      if (rank.rank() == 0) elapsed = t1 - t0;
    });

    const double total =
        static_cast<double>(bytes_per_rank) * nranks;
    std::cout << "\n== " << driver->name() << " ==\n";
    std::cout << "dump of " << nranks * per_rank << " particles ("
              << util::format_bytes(static_cast<std::uint64_t>(total))
              << ") in " << std::setprecision(4) << elapsed
              << " virtual s  ->  " << util::format_mbps(total / elapsed)
              << "\n";
    std::cout << "aggregators:\n";
    for (const auto& a : stats.aggregators()) {
      std::cout << "  rank " << std::setw(3) << a.rank << " on node "
                << a.node << ": buffer "
                << util::format_bytes(a.buffer_bytes) << ", pressure "
                << util::fixed(a.pressure, 2) << ", " << a.rounds
                << " rounds\n";
    }
  }
  return 0;
}
